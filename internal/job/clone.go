package job

// Clone returns a fresh Created copy of j with lifecycle fields reset, so
// a recorded log can be replayed through another simulation without the
// first run's start/finish times leaking in.
func (j *Job) Clone() *Job {
	c := *j
	c.Start = -1
	c.Finish = -1
	c.State = Created
	c.Priority = 0
	return &c
}

// CloneAll clones a whole log.
func CloneAll(jobs []*Job) []*Job {
	out := make([]*Job, len(jobs))
	for i, j := range jobs {
		out[i] = j.Clone()
	}
	return out
}

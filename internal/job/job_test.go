package job

import (
	"strings"
	"testing"
	"testing/quick"

	"interstitial/internal/sim"
)

func TestNewDefaults(t *testing.T) {
	j := New(7, "alice", "phys", 16, 100, 600, 50)
	if j.Class != Native {
		t.Fatalf("class = %v, want native", j.Class)
	}
	if j.State != Created {
		t.Fatalf("state = %v, want created", j.State)
	}
	if j.Start != -1 || j.Finish != -1 {
		t.Fatalf("start/finish = %d/%d, want -1/-1", j.Start, j.Finish)
	}
	if err := j.Validate(); err != nil {
		t.Fatalf("fresh job invalid: %v", err)
	}
}

func TestNewInterstitial(t *testing.T) {
	j := NewInterstitial(1, 32, 458, 0)
	if j.Class != Interstitial {
		t.Fatal("class not interstitial")
	}
	if j.Estimate != j.Runtime {
		t.Fatalf("interstitial estimate %d != runtime %d", j.Estimate, j.Runtime)
	}
}

func TestNewPanicsOnBadCPUs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with 0 CPUs did not panic")
		}
	}()
	New(1, "u", "g", 0, 10, 10, 0)
}

func TestWaitAndEF(t *testing.T) {
	j := New(1, "u", "g", 4, 100, 200, 1000)
	if j.Wait() != -1 {
		t.Fatalf("unstarted wait = %d, want -1", j.Wait())
	}
	if j.ExpansionFactor() != -1 {
		t.Fatal("unstarted EF should be -1")
	}
	j.Start = 1300
	if j.Wait() != 300 {
		t.Fatalf("wait = %d, want 300", j.Wait())
	}
	if got := j.ExpansionFactor(); got != 4.0 {
		t.Fatalf("EF = %v, want 4.0", got)
	}
}

func TestEFZeroRuntimeClamped(t *testing.T) {
	j := New(1, "u", "g", 1, 0, 1, 0)
	j.Start = 10
	if got := j.ExpansionFactor(); got != 11 {
		t.Fatalf("EF = %v, want 11 (runtime clamped to 1s)", got)
	}
}

func TestEstimatedEnd(t *testing.T) {
	j := New(1, "u", "g", 1, 100, 500, 0)
	if j.EstimatedEnd() != -1 {
		t.Fatal("unstarted EstimatedEnd should be -1")
	}
	j.Start = 1000
	if got := j.EstimatedEnd(); got != 1500 {
		t.Fatalf("EstimatedEnd = %d, want 1500", got)
	}
	// Underestimate: the true end dominates so planning never sees a
	// running job as already gone.
	j2 := New(2, "u", "g", 1, 500, 100, 0)
	j2.Start = 1000
	if got := j2.EstimatedEnd(); got != 1500 {
		t.Fatalf("underestimated EstimatedEnd = %d, want 1500", got)
	}
}

func TestCPUSeconds(t *testing.T) {
	j := New(1, "u", "g", 32, 458, 458, 0)
	if got := j.CPUSeconds(); got != 32*458 {
		t.Fatalf("CPUSeconds = %v", got)
	}
}

func TestValidateCatchesBrokenJobs(t *testing.T) {
	mk := func() *Job {
		j := New(1, "u", "g", 2, 100, 100, 50)
		j.Start = 60
		j.Finish = 160
		j.State = Finished
		return j
	}
	if err := mk().Validate(); err != nil {
		t.Fatalf("good job invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Job)
		frag string
	}{
		{"start before submit", func(j *Job) { j.Start = 10 }, "before submit"},
		{"finish mismatch", func(j *Job) { j.Finish = 170 }, "finish"},
		{"running unstarted", func(j *Job) { j.State = Running; j.Start = -1; j.Finish = -1 }, "never started"},
		{"finished missing times", func(j *Job) { j.Finish = -1 }, "missing times"},
	}
	for _, c := range cases {
		j := mk()
		c.mut(j)
		err := j.Validate()
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.frag)
		}
	}
}

func TestClassAndStateStrings(t *testing.T) {
	if Native.String() != "native" || Interstitial.String() != "interstitial" {
		t.Fatal("class strings wrong")
	}
	for s, want := range map[State]string{Created: "created", Queued: "queued", Running: "running", Finished: "finished"} {
		if s.String() != want {
			t.Fatalf("state %d string = %q", s, s.String())
		}
	}
}

// Property: EF >= 1 for any started job, and wait is nonnegative when the
// start respects the submit time.
func TestQuickEFAtLeastOne(t *testing.T) {
	f := func(cpus uint8, runtime, wait uint16) bool {
		c := int(cpus)%64 + 1
		j := New(1, "u", "g", c, sim.Time(runtime), sim.Time(runtime), 100)
		j.Start = 100 + sim.Time(wait)
		return j.Wait() == sim.Time(wait) && j.ExpansionFactor() >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneWithinPackage(t *testing.T) {
	j := New(5, "u", "g", 8, 100, 200, 50)
	j.Start = 60
	j.Finish = 160
	j.State = Finished
	j.Priority = 3
	c := j.Clone()
	if c.Start != -1 || c.Finish != -1 || c.State != Created || c.Priority != 0 {
		t.Fatalf("clone lifecycle not reset: %+v", c)
	}
	if c.ID != 5 || c.CPUs != 8 || c.Runtime != 100 || c.Estimate != 200 || c.Submit != 50 {
		t.Fatal("clone identity lost")
	}
	all := CloneAll([]*Job{j, j})
	if len(all) != 2 || all[0] == all[1] {
		t.Fatal("CloneAll aliasing")
	}
}

func TestStringRendering(t *testing.T) {
	j := New(7, "u", "g", 16, 100, 200, 50)
	s := j.String()
	for _, frag := range []string{"job 7", "native", "16cpu", "rt=100"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() = %q missing %q", s, frag)
		}
	}
	var bad State = 99
	if !strings.Contains(bad.String(), "state(99)") {
		t.Fatalf("unknown state string = %q", bad.String())
	}
	if Killed.String() != "killed" {
		t.Fatal("killed string")
	}
}

func TestValidateKilledWindow(t *testing.T) {
	j := New(1, "u", "g", 2, 100, 100, 0)
	j.Start = 10
	j.Finish = 60
	j.State = Killed
	if err := j.Validate(); err != nil {
		t.Fatalf("valid killed job rejected: %v", err)
	}
	j.Finish = 200 // beyond start+runtime
	if j.Validate() == nil {
		t.Fatal("killed job outside execution window accepted")
	}
	j.Finish = -1
	if j.Validate() == nil {
		t.Fatal("killed job without finish accepted")
	}
}

func TestValidateFieldErrors(t *testing.T) {
	for _, mut := range []func(*Job){
		func(j *Job) { j.CPUs = 0 },
		func(j *Job) { j.Runtime = -1 },
		func(j *Job) { j.Estimate = -1 },
		func(j *Job) { j.Submit = -1 },
	} {
		j := New(1, "u", "g", 2, 100, 100, 0)
		mut(j)
		if j.Validate() == nil {
			t.Fatalf("invalid field accepted: %+v", j)
		}
	}
}

package rng

import "math/rand"

// Counter wraps a rand.Source64 and counts how many times the underlying
// source advances. Every math/rand primitive (Float64, ExpFloat64,
// NormFloat64, Int63, Perm, ...) advances the source exactly once per
// internal draw, so a position recorded here identifies an exact point in
// the deterministic draw sequence: a fresh source Skip()ed to the same
// position continues with identical values. The streaming workload
// generator uses this to replay selected spans of Generate's draw
// sequence without materializing intermediate results.
//
// Counter must implement rand.Source64: rand.Rand type-switches on its
// source and takes a different (and differently-consuming) path for
// plain Sources, which would break replay.
type Counter struct {
	src rand.Source64
	pos uint64
}

// NewCounted returns a *rand.Rand seeded like New(seed) plus the Counter
// tracking its source position. The Rand's draw sequence is identical to
// New(seed)'s.
func NewCounted(seed int64) (*rand.Rand, *Counter) {
	src, ok := rand.NewSource(seed).(rand.Source64)
	if !ok {
		// rand.NewSource has returned a Source64 since Go 1.8; replay
		// counting is meaningless without it.
		panic("rng: rand.NewSource does not implement Source64")
	}
	c := &Counter{src: src}
	return rand.New(c), c
}

// Int63 advances the source once.
func (c *Counter) Int63() int64 {
	c.pos++
	return c.src.Int63()
}

// Uint64 advances the source once.
func (c *Counter) Uint64() uint64 {
	c.pos++
	return c.src.Uint64()
}

// Seed reseeds the underlying source and resets the position.
func (c *Counter) Seed(seed int64) {
	c.src.Seed(seed)
	c.pos = 0
}

// Pos reports how many times the source has advanced.
func (c *Counter) Pos() uint64 { return c.pos }

// Skip fast-forwards the source by n draws. Skipping from position 0 to
// a position recorded on another Counter with the same seed lands on the
// identical source state.
func (c *Counter) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.src.Uint64()
	}
	c.pos += n
}

package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogNormalMedianAndMean(t *testing.T) {
	r := New(1)
	const median, mean = 0.8, 2.5 // the paper's native runtime hours
	sigma := LogNormalSigmaForMean(median, mean)
	n := 200000
	xs := make([]float64, n)
	sum := 0.0
	for i := range xs {
		xs[i] = LogNormal(r, median, sigma)
		sum += xs[i]
	}
	// Empirical median ~ configured median.
	below := 0
	for _, x := range xs {
		if x < median {
			below++
		}
	}
	if frac := float64(below) / float64(n); math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("median check: %.3f of samples below median, want ~0.5", frac)
	}
	if got := sum / float64(n); math.Abs(got-mean)/mean > 0.05 {
		t.Fatalf("mean = %.3f, want ~%.1f", got, mean)
	}
}

func TestLogNormalSigmaDegenerate(t *testing.T) {
	if LogNormalSigmaForMean(2, 1) != 0 {
		t.Fatal("mean <= median should give sigma 0")
	}
	r := New(2)
	if got := LogNormal(r, 5, 0); got != 5 {
		t.Fatalf("sigma=0 lognormal = %v, want exactly the median", got)
	}
}

func TestBoundedParetoRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		x := BoundedPareto(r, 1.1, 1, 512)
		if x < 1 || x > 512 {
			t.Fatalf("sample %v out of [1,512]", x)
		}
	}
	if got := BoundedPareto(r, 1.0, 7, 7); got != 7 {
		t.Fatalf("degenerate bounds = %v, want 7", got)
	}
}

func TestBoundedParetoHeavyTail(t *testing.T) {
	r := New(4)
	big := 0
	n := 100000
	for i := 0; i < n; i++ {
		if BoundedPareto(r, 0.9, 1, 1024) > 256 {
			big++
		}
	}
	// A heavy tail must place noticeable mass far above the minimum.
	if big == 0 {
		t.Fatal("no samples in the tail; distribution not heavy-tailed")
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(5)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += Exponential(r, 42)
	}
	if got := sum / float64(n); math.Abs(got-42)/42 > 0.03 {
		t.Fatalf("exponential mean = %.2f, want ~42", got)
	}
}

func TestWeighted(t *testing.T) {
	r := New(6)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[Weighted(r, []float64{1, 2, 7})]++
	}
	if !(counts[2] > counts[1] && counts[1] > counts[0]) {
		t.Fatalf("weighted counts not ordered: %v", counts)
	}
	if frac := float64(counts[2]) / 30000; math.Abs(frac-0.7) > 0.02 {
		t.Fatalf("heavy weight frac = %.3f, want ~0.7", frac)
	}
}

func TestWeightedPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("all-zero weights did not panic")
		}
	}()
	Weighted(New(1), []float64{0, 0})
}

func TestDiscrete(t *testing.T) {
	d := NewDiscrete([]float64{10, 20, 30}, []float64{0, 0, 1})
	r := New(7)
	for i := 0; i < 100; i++ {
		if got := d.Sample(r); got != 30 {
			t.Fatalf("sample = %v, want 30", got)
		}
	}
}

func TestDiscretePanics(t *testing.T) {
	for _, c := range []struct {
		v, w []float64
	}{
		{nil, nil},
		{[]float64{1}, []float64{1, 2}},
		{[]float64{1}, []float64{-1}},
		{[]float64{1}, []float64{0}},
	} {
		func() {
			defer func() { recover() }()
			NewDiscrete(c.v, c.w)
			t.Fatalf("NewDiscrete(%v,%v) did not panic", c.v, c.w)
		}()
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

// Property: weighted selection always returns a valid index with positive
// weight.
func TestQuickWeightedValid(t *testing.T) {
	f := func(seed int64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		ws := make([]float64, len(raw))
		any := false
		for i, b := range raw {
			ws[i] = float64(b)
			if b > 0 {
				any = true
			}
		}
		if !any {
			return true
		}
		i := Weighted(New(seed), ws)
		return i >= 0 && i < len(ws) && ws[i] > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// DeriveSeed must be deterministic, stream-sensitive, and base-sensitive:
// shards seeded from the same base but different streams get uncorrelated
// generators.
func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(7, 0) != DeriveSeed(7, 0) {
		t.Fatal("DeriveSeed is not deterministic")
	}
	seen := map[int64]uint64{}
	for stream := uint64(0); stream < 1000; stream++ {
		s := DeriveSeed(42, stream)
		if prev, dup := seen[s]; dup {
			t.Fatalf("streams %d and %d collide on seed %d", prev, stream, s)
		}
		seen[s] = stream
	}
	if DeriveSeed(1, 5) == DeriveSeed(2, 5) {
		t.Fatal("different bases produced the same derived seed")
	}
	// A derived generator must not replay its sibling's sequence.
	a, b := New(DeriveSeed(9, 0)), New(DeriveSeed(9, 1))
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/64 outputs identical across streams", same)
	}
}

// Counter: positions identify exact points in the draw sequence — a
// fresh counted source Skip()ed to a recorded position continues with
// identical values.
func TestCountedReplay(t *testing.T) {
	r1, c1 := NewCounted(11)
	// The counted Rand's sequence matches New(seed)'s.
	plain := New(11)
	for i := 0; i < 16; i++ {
		if r1.Uint64() != plain.Uint64() {
			t.Fatalf("counted draw %d diverged from New(11)", i)
		}
	}
	r1.ExpFloat64()
	r1.Int63()
	mark := c1.Pos()
	if mark == 0 {
		t.Fatal("position never advanced")
	}
	want := []uint64{r1.Uint64(), r1.Uint64(), r1.Uint64()}

	r2, c2 := NewCounted(11)
	c2.Skip(mark)
	if c2.Pos() != mark {
		t.Fatalf("Skip landed at %d, want %d", c2.Pos(), mark)
	}
	for i, w := range want {
		if got := r2.Uint64(); got != w {
			t.Fatalf("replayed draw %d = %d, want %d", i, got, w)
		}
	}
	// Reseeding resets the position and the sequence.
	c2.Seed(11)
	if c2.Pos() != 0 {
		t.Fatalf("Seed left position %d", c2.Pos())
	}
	if c2.Int63() < 0 {
		t.Fatal("Int63 out of range")
	}
}

// Package rng centralizes the random distributions used by the synthetic
// workload generator. Everything is driven by an explicit *rand.Rand so
// simulations are reproducible from a single seed.
package rng

import (
	"math"
	"math/rand"
	"sort"
)

// New returns a rand.Rand seeded deterministically.
func New(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// DeriveSeed derives the seed of an independent random stream from a base
// seed and a stream index, by running (base, stream) through a splitmix64
// finalizer. Nearby bases and streams land far apart, so per-shard
// generators seeded with DeriveSeed(seed, shard) behave as unrelated
// streams while staying a pure function of the pair — the property the
// federation layer's determinism contract rests on.
func DeriveSeed(base int64, stream uint64) int64 {
	z := uint64(base) ^ (0x9e3779b97f4a7c15 * (stream + 1))
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Stream returns a generator for the DeriveSeed-derived stream (base,
// stream): the per-shard rng of a sharded simulation in one call. Two
// distinct stream indices yield unrelated generators; the same pair always
// yields the same generator, independent of which worker asks.
func Stream(base int64, stream uint64) *rand.Rand { return New(DeriveSeed(base, stream)) }

// LogNormal draws from a lognormal distribution with the given median and
// sigma (the standard deviation of the underlying normal). The mean of the
// distribution is median * exp(sigma^2/2).
func LogNormal(r *rand.Rand, median, sigma float64) float64 {
	return median * math.Exp(sigma*r.NormFloat64())
}

// LogNormalSigmaForMean solves for the sigma that gives a lognormal with
// the requested median and mean (mean must exceed median).
func LogNormalSigmaForMean(median, mean float64) float64 {
	if mean <= median {
		return 0
	}
	return math.Sqrt(2 * math.Log(mean/median))
}

// BoundedPareto draws from a Pareto distribution with shape alpha truncated
// to [lo, hi]. Heavy-tailed for small alpha; used for job-size fat tails.
func BoundedPareto(r *rand.Rand, alpha, lo, hi float64) float64 {
	if lo >= hi {
		return lo
	}
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Exponential draws an exponential with the given mean.
func Exponential(r *rand.Rand, mean float64) float64 {
	return r.ExpFloat64() * mean
}

// Weighted selects an index from weights proportionally. It panics on an
// empty or all-zero weight vector.
func Weighted(r *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("rng: no positive weights")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Discrete is a reusable weighted sampler over arbitrary float64 values.
type Discrete struct {
	values []float64
	cum    []float64
}

// NewDiscrete builds a sampler; weights need not be normalized.
func NewDiscrete(values, weights []float64) *Discrete {
	if len(values) != len(weights) || len(values) == 0 {
		panic("rng: values/weights mismatch")
	}
	d := &Discrete{values: append([]float64(nil), values...), cum: make([]float64, len(weights))}
	sum := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		sum += w
		d.cum[i] = sum
	}
	if sum <= 0 {
		panic("rng: zero total weight")
	}
	return d
}

// Sample draws one value.
func (d *Discrete) Sample(r *rand.Rand) float64 {
	x := r.Float64() * d.cum[len(d.cum)-1]
	i := sort.SearchFloat64s(d.cum, x)
	if i >= len(d.values) {
		i = len(d.values) - 1
	}
	return d.values[i]
}

package sched

import (
	"interstitial/internal/job"
	"interstitial/internal/machine"
	"interstitial/internal/profile"
	"interstitial/internal/sim"
	"interstitial/internal/tracing"
)

// Dispatcher runs scheduling passes: it orders the queue via the policy,
// starts whatever the backfill rules allow, and reports planning
// information (the head job's reservation) that the interstitial
// controller needs.
type Dispatcher struct {
	policy Policy
	tracer *tracing.Tracer

	// plan is the arena for the per-pass free-CPU profile: rebuilt in place
	// at the top of every Schedule so steady-state passes allocate nothing.
	// The PassResult.Plan returned by Schedule aliases it and is therefore
	// valid only until the next Schedule call on this dispatcher — which
	// covers its one consumer, the controller's same-pass AfterPass hook.
	plan profile.Profile

	// orderEpoch/orderValid cache the policy epoch the queue's standing
	// order was computed under (OrderingEpoch policies only).
	orderEpoch uint64
	orderValid bool
}

// NewDispatcher wraps a policy.
func NewDispatcher(p Policy) *Dispatcher { return &Dispatcher{policy: p} }

// Policy exposes the wrapped policy.
func (d *Dispatcher) Policy() Policy { return d.policy }

// SetTracer installs the decision tracer (nil: tracing off). The
// dispatcher emits at the classification sites inside Schedule, so a
// start's trace reason records *which* rule dispatched it — head drain
// vs. backfill flavor — information PassResult only aggregates.
func (d *Dispatcher) SetTracer(t *tracing.Tracer) { d.tracer = t }

// PassResult reports what a scheduling pass did and the resulting plan.
type PassResult struct {
	// Started lists the jobs dispatched at this instant, in start order.
	Started []*job.Job
	// Backfilled counts how many of Started jumped the queue: starts that
	// were not the head draining in priority order (EASY's backfill loop,
	// Conservative's out-of-order reservations-come-due). Head-of-queue
	// and NoBackfill starts never count.
	Backfilled int
	// HeadReservation is the planned start time of the highest-priority
	// job still waiting, based on user estimates — the paper's
	// "backfillWallTime". It is sim.Infinity when the queue drained or no
	// plan exists.
	HeadReservation sim.Time
	// Plan is the free-CPU profile after this pass's starts plus the
	// reservations the flavor protects: the head job's under EASY and
	// NoBackfill, every queued job's under Conservative. The interstitial
	// controller packs into this plan.
	Plan *profile.Profile
}

// planningDuration is the duration the scheduler plans with: the user
// estimate, floored at one second so zero-estimate jobs still occupy the
// plan.
func planningDuration(j *job.Job) sim.Time {
	if j.Estimate < 1 {
		return 1
	}
	return j.Estimate
}

// earliestAllowedFit finds the first instant >= after where j both fits in
// p and is permitted by the policy's gates. The fixed-point loop converges
// quickly because gates are periodic; if it fails to converge the job is
// treated as unplannable this pass.
func (d *Dispatcher) earliestAllowedFit(p *profile.Profile, j *job.Job, after sim.Time) (sim.Time, bool) {
	t := after
	for iter := 0; iter < 64; iter++ {
		ft, ok := p.EarliestFit(t, j.CPUs, planningDuration(j))
		if !ok {
			return 0, false
		}
		at := d.policy.EarliestAllowed(ft, j)
		if at == ft {
			return ft, true
		}
		t = at
	}
	return 0, false
}

// start dispatches j on m now and updates the plan.
func (d *Dispatcher) start(now sim.Time, m *machine.Machine, p *profile.Profile, j *job.Job) {
	m.Start(now, j)
	d.policy.OnStart(now, j)
	p.Reserve(now, j.CPUs, planningDuration(j))
}

// traceStart records one dispatch decision; aux is the job's queue wait.
func (d *Dispatcher) traceStart(now sim.Time, m *machine.Machine, j *job.Job, kind tracing.Kind, reason tracing.Reason) {
	if d.tracer != nil {
		d.tracer.Emit(now, kind, reason, j.ID, j.CPUs, m.Busy(), int64(now-j.Submit))
	}
}

// order brings the queue into dispatch order, doing only the work the
// policy's Ordering class requires. The dispatch key is a total order, so
// the incremental paths (prioritize arrivals + merge) produce the exact
// sequence a full reprioritize + sort would — they just skip re-deriving
// priorities that provably have not moved.
func (d *Dispatcher) order(now sim.Time, q *Queue) {
	switch d.policy.Ordering() {
	case OrderingStatic:
		for _, j := range q.Unordered() {
			d.policy.Prioritize(now, j)
		}
		q.MergeUnordered()
	case OrderingEpoch:
		epoch := d.policy.OrderEpoch()
		if d.orderValid && epoch == d.orderEpoch {
			for _, j := range q.Unordered() {
				d.policy.Prioritize(now, j)
			}
			q.MergeUnordered()
			return
		}
		for _, j := range q.Jobs() {
			d.policy.Prioritize(now, j)
		}
		q.Sort()
		d.orderEpoch = epoch
		d.orderValid = true
	default: // OrderingDynamic: re-derive everything, every pass.
		for _, j := range q.Jobs() {
			d.policy.Prioritize(now, j)
		}
		q.Sort()
	}
}

// Schedule runs one pass at time now and returns what happened. It starts
// native jobs only; interstitial jobs are dispatched by their controller
// against the returned Plan.
func (d *Dispatcher) Schedule(now sim.Time, m *machine.Machine, q *Queue) PassResult {
	d.order(now, q)

	// Borrowed slice: RebuildFromRunning only reads it, within this pass.
	p := &d.plan
	p.RebuildFromRunning(now, m.Config().CPUs, m.RunningBorrow())
	res := PassResult{HeadReservation: sim.Infinity}

	switch d.policy.Backfill() {
	case NoBackfill:
		for q.Len() > 0 {
			h := q.Head()
			if !m.CanStart(h.CPUs) || d.policy.EarliestAllowed(now, h) != now {
				break
			}
			d.start(now, m, p, q.Remove(0))
			d.traceStart(now, m, h, tracing.KindStart, tracing.ReasonHeadOfQueue)
			res.Started = append(res.Started, h)
		}
		if q.Len() > 0 {
			// FCFS does not backfill natives, but the head's reservation
			// must still appear in the plan: it is the "backfillWallTime"
			// guard that keeps interstitial jobs from starving the head.
			h := q.Head()
			if at, ok := d.earliestAllowedFit(p, h, now); ok {
				res.HeadReservation = at
				p.Reserve(at, h.CPUs, planningDuration(h))
			}
		}

	case EASY:
		// Drain the head of the queue while it can start immediately.
		for q.Len() > 0 {
			h := q.Head()
			if !m.CanStart(h.CPUs) || d.policy.EarliestAllowed(now, h) != now {
				break
			}
			d.start(now, m, p, q.Remove(0))
			d.traceStart(now, m, h, tracing.KindStart, tracing.ReasonHeadOfQueue)
			res.Started = append(res.Started, h)
		}
		if q.Len() > 0 {
			// Reserve the head at its shadow time; backfill may not
			// delay it.
			h := q.Head()
			if at, ok := d.earliestAllowedFit(p, h, now); ok {
				res.HeadReservation = at
				p.Reserve(at, h.CPUs, planningDuration(h))
			}
			// Backfill the rest: anything that fits right now without
			// touching the head reservation.
			for i := 1; i < q.Len(); {
				j := q.At(i)
				if d.policy.EarliestAllowed(now, j) == now &&
					m.CanStart(j.CPUs) &&
					p.MinFree(now, now+planningDuration(j)) >= j.CPUs {
					d.start(now, m, p, q.Remove(i))
					d.traceStart(now, m, j, tracing.KindBackfill, tracing.ReasonEASYBackfill)
					res.Started = append(res.Started, j)
					res.Backfilled++
					continue
				}
				i++
			}
		}

	case Conservative:
		// Reserve every queued job in priority order; start the ones
		// whose reservation is "now". Nothing may delay anyone ahead of
		// it, which is the restrictive backfill the paper ascribes to
		// Ross.
		i := 0
		for i < q.Len() {
			j := q.At(i)
			at, ok := d.earliestAllowedFit(p, j, now)
			if !ok {
				i++
				continue
			}
			if at == now && m.CanStart(j.CPUs) {
				d.start(now, m, p, q.Remove(i))
				if i > 0 {
					d.traceStart(now, m, j, tracing.KindBackfill, tracing.ReasonConservativeBackfill)
					res.Backfilled++
				} else {
					d.traceStart(now, m, j, tracing.KindStart, tracing.ReasonHeadOfQueue)
				}
				res.Started = append(res.Started, j)
				continue
			}
			p.Reserve(at, j.CPUs, planningDuration(j))
			if res.HeadReservation == sim.Infinity {
				res.HeadReservation = at
			}
			i++
		}
	}

	res.Plan = p
	return res
}

package sched

import (
	"testing"

	"interstitial/internal/job"
	"interstitial/internal/machine"
	"interstitial/internal/sim"
)

func mkMachine(cpus int) *machine.Machine {
	return machine.New(machine.Config{Name: "test", CPUs: cpus, ClockGHz: 1})
}

func TestQueueSortOrder(t *testing.T) {
	q := NewQueue()
	a := job.New(1, "u", "g", 1, 10, 10, 100)
	b := job.New(2, "u", "g", 1, 10, 10, 50)
	c := job.New(3, "u", "g", 1, 10, 10, 50)
	d := job.New(4, "u", "g", 1, 10, 10, 200)
	d.Priority = 5 // outranks everything
	for _, j := range []*job.Job{a, b, c, d} {
		q.Push(j)
	}
	q.Sort()
	want := []int{4, 2, 3, 1} // priority, then submit, then ID
	for i, id := range want {
		if q.At(i).ID != id {
			t.Fatalf("order[%d] = %d, want %d", i, q.At(i).ID, id)
		}
	}
}

func TestQueuePushMarksQueued(t *testing.T) {
	q := NewQueue()
	j := job.New(1, "u", "g", 1, 10, 10, 0)
	q.Push(j)
	if j.State != job.Queued {
		t.Fatalf("state = %v, want queued", j.State)
	}
	if q.Head() != j {
		t.Fatal("head mismatch")
	}
	if q.Remove(0) != j || q.Len() != 0 || q.Head() != nil {
		t.Fatal("remove broken")
	}
}

func TestFCFSBlocksOnHead(t *testing.T) {
	d := NewDispatcher(NewFCFS())
	m := mkMachine(10)
	q := NewQueue()
	blocker := job.New(1, "u", "g", 8, 100, 100, 0)
	m.Start(0, blocker) // 2 CPUs free
	big := job.New(2, "u", "g", 5, 10, 10, 0)
	small := job.New(3, "u", "g", 1, 10, 10, 0)
	q.Push(big)
	q.Push(small)
	res := d.Schedule(0, m, q)
	if len(res.Started) != 0 {
		t.Fatalf("FCFS started %d jobs behind a blocked head", len(res.Started))
	}
	if res.HeadReservation != 100 {
		t.Fatalf("head reservation = %d, want 100", res.HeadReservation)
	}
}

func TestEASYBackfillsShortJob(t *testing.T) {
	d := NewDispatcher(NewLSF())
	m := mkMachine(10)
	q := NewQueue()
	blocker := job.New(1, "u", "g", 8, 100, 100, 0)
	m.Start(0, blocker) // 2 free until t=100
	head := job.New(2, "u", "g", 5, 10, 10, 0)
	short := job.New(3, "u", "g", 2, 50, 50, 0)  // fits the 2 free, ends at 50 < 100
	long := job.New(4, "u", "g", 2, 500, 500, 0) // would delay head
	q.Push(head)
	q.Push(short)
	q.Push(long)
	res := d.Schedule(0, m, q)
	if len(res.Started) != 1 || res.Started[0].ID != 3 {
		t.Fatalf("EASY started %v, want only job 3", ids(res.Started))
	}
	if res.HeadReservation != 100 {
		t.Fatalf("shadow time = %d, want 100", res.HeadReservation)
	}
	// The long job stays queued: starting it would hold 2 CPUs past
	// t=100, leaving only 8 for the 5-CPU head... actually 8 >= 5.
	// The real reason it must wait: after the backfill of job 3, 0 CPUs
	// are free now.
	if q.Len() != 2 {
		t.Fatalf("queue len = %d, want 2", q.Len())
	}
}

func TestEASYBackfillRespectsHeadReservation(t *testing.T) {
	d := NewDispatcher(NewLSF())
	m := mkMachine(10)
	q := NewQueue()
	blocker := job.New(1, "u", "g", 5, 100, 100, 0)
	m.Start(0, blocker)                         // 5 free until 100
	head := job.New(2, "u", "g", 10, 10, 10, 0) // needs the whole machine at t=100
	cand := job.New(3, "u", "g", 5, 200, 200, 0)
	q.Push(head)
	q.Push(cand)
	res := d.Schedule(0, m, q)
	// cand fits now (5 free) but would run past t=100, delaying the
	// 10-CPU head: EASY must reject it.
	if len(res.Started) != 0 {
		t.Fatalf("EASY delayed the head by starting %v", ids(res.Started))
	}
	// A candidate ending exactly at the shadow time is fine.
	cand2 := job.New(4, "u", "g", 5, 100, 100, 0)
	q.Push(cand2)
	res = d.Schedule(0, m, q)
	if len(res.Started) != 1 || res.Started[0].ID != 4 {
		t.Fatalf("EASY rejected a harmless backfill, started %v", ids(res.Started))
	}
}

func TestEASYDrainsHeadWhenFits(t *testing.T) {
	d := NewDispatcher(NewLSF())
	m := mkMachine(10)
	q := NewQueue()
	for i := 1; i <= 3; i++ {
		q.Push(job.New(i, "u", "g", 3, 10, 10, 0))
	}
	res := d.Schedule(0, m, q)
	if len(res.Started) != 3 {
		t.Fatalf("started %d, want 3", len(res.Started))
	}
	if res.HeadReservation != sim.Infinity {
		t.Fatal("drained queue should report Infinity reservation")
	}
	if m.Free() != 1 {
		t.Fatalf("free = %d, want 1", m.Free())
	}
}

func TestConservativeProtectsAllReservations(t *testing.T) {
	d := NewDispatcher(NewPBS())
	m := mkMachine(10)
	q := NewQueue()
	blocker := job.New(1, "u", "g", 8, 100, 100, 0)
	m.Start(0, blocker)                             // 2 free until 100
	first := job.New(2, "u", "g", 5, 50, 50, 10)    // reserved at 100
	second := job.New(3, "u", "g", 5, 500, 500, 20) // reserved at 100 too (5+5=10 fits)
	third := job.New(4, "u", "g", 2, 40, 40, 30)    // fits now, ends at 40 <= 100: ok
	fourth := job.New(5, "u", "g", 2, 90, 90, 40)   // now+90 <= 100 fits with third gone... only 0 free after third
	q.Push(first)
	q.Push(second)
	q.Push(third)
	q.Push(fourth)
	res := d.Schedule(0, m, q)
	if len(res.Started) != 1 || res.Started[0].ID != 4 {
		t.Fatalf("conservative started %v, want only job 4", ids(res.Started))
	}
	if res.HeadReservation != 100 {
		t.Fatalf("head reservation = %d, want 100", res.HeadReservation)
	}
}

func TestConservativeDoesNotDelayLowerReservations(t *testing.T) {
	d := NewDispatcher(NewPBS())
	m := mkMachine(10)
	q := NewQueue()
	blocker := job.New(1, "u", "g", 6, 100, 100, 0)
	m.Start(0, blocker)                           // 4 free until 100
	head := job.New(2, "u", "g", 6, 100, 100, 10) // reserved [100,200)
	second := job.New(3, "u", "g", 8, 50, 50, 20) // reserved [200,250)
	cand := job.New(4, "u", "g", 4, 210, 210, 30) // fits now; overlaps second's reservation
	q.Push(head)
	q.Push(second)
	q.Push(cand)
	res := d.Schedule(0, m, q)
	// cand does not delay the head (4 CPUs stay free through [0,200))
	// so EASY would start it — but it would rob second's [200,250)
	// reservation of 2 CPUs, so conservative must refuse.
	if len(res.Started) != 0 {
		t.Fatalf("conservative started %v, want none (delays reservations)", ids(res.Started))
	}
	if res.HeadReservation != 100 {
		t.Fatalf("head reservation = %d, want 100", res.HeadReservation)
	}

	// Sanity-check the contrast: EASY in the same scenario does start cand.
	de := NewDispatcher(NewLSF())
	me := mkMachine(10)
	qe := NewQueue()
	be := job.New(1, "u", "g", 6, 100, 100, 0)
	me.Start(0, be)
	qe.Push(job.New(2, "u", "g", 6, 100, 100, 10))
	qe.Push(job.New(3, "u", "g", 8, 50, 50, 20))
	ce := job.New(4, "u", "g", 4, 210, 210, 30)
	qe.Push(ce)
	rese := de.Schedule(0, me, qe)
	if len(rese.Started) != 1 || rese.Started[0].ID != 4 {
		t.Fatalf("EASY contrast started %v, want job 4", ids(rese.Started))
	}
}

func TestDPCSGateWindows(t *testing.T) {
	g := DefaultDPCSGate()
	// 02:00 is inside the wrapped night window; noon is not.
	if !g.allowedAt(2 * 3600) {
		t.Fatal("02:00 should be allowed")
	}
	if g.allowedAt(12 * 3600) {
		t.Fatal("noon should be blocked")
	}
	if !g.allowedAt(19 * 3600) {
		t.Fatal("19:00 should be allowed")
	}
	if got := g.nextAllowed(12 * 3600); got != 18*3600 {
		t.Fatalf("nextAllowed(noon) = %d, want 18:00", got)
	}
	if got := g.nextAllowed(2 * 3600); got != 2*3600 {
		t.Fatalf("nextAllowed inside window moved: %d", got)
	}
	// Day boundaries: 06:00 exactly is blocked (end-exclusive).
	if g.allowedAt(6 * 3600) {
		t.Fatal("06:00 should be blocked")
	}
}

func TestDPCSGatesBigJobsOnly(t *testing.T) {
	pol := NewDPCS(DefaultDPCSGate())
	small := job.New(1, "u", "g", 4, 100, 100, 0)
	big := job.New(2, "u", "g", 512, 100, 100, 0)
	long := job.New(3, "u", "g", 4, 100, 25*3600, 0)
	noon := sim.Time(12 * 3600)
	if pol.EarliestAllowed(noon, small) != noon {
		t.Fatal("small job gated")
	}
	if pol.EarliestAllowed(noon, big) != 18*3600 {
		t.Fatal("big job not deferred to night")
	}
	if pol.EarliestAllowed(noon, long) != 18*3600 {
		t.Fatal("long job not deferred to night")
	}
	// Interstitial jobs are never gated.
	ij := job.NewInterstitial(4, 512, 100, 0)
	if pol.EarliestAllowed(noon, ij) != noon {
		t.Fatal("interstitial job gated")
	}
}

func TestDPCSScheduleDefersBigJob(t *testing.T) {
	d := NewDispatcher(NewDPCS(DPCSGate{BigCPUs: 8, LongEstimate: 0, NightStart: 18 * 3600, NightEnd: 6 * 3600}))
	m := mkMachine(16)
	q := NewQueue()
	big := job.New(1, "u", "g", 8, 100, 100, 0)
	q.Push(big)
	res := d.Schedule(12*3600, m, q) // noon
	if len(res.Started) != 0 {
		t.Fatal("gated job started at noon")
	}
	if res.HeadReservation != 18*3600 {
		t.Fatalf("head reservation = %d, want 18:00", res.HeadReservation)
	}
	res = d.Schedule(19*3600, m, q)
	if len(res.Started) != 1 {
		t.Fatal("gated job did not start at night")
	}
}

func TestFairShareReordersAcrossPasses(t *testing.T) {
	// Group "hog" burns lots of cycles; a later pass must rank a fresh
	// group's job above hog's even though hog submitted first — the
	// dynamic reprioritization that lets new jobs poach queue positions.
	d := NewDispatcher(NewLSF())
	m := mkMachine(4)
	q := NewQueue()
	burner := job.New(1, "h", "hog", 4, 1000, 1000, 0)
	q.Push(burner)
	res := d.Schedule(0, m, q)
	if len(res.Started) != 1 {
		t.Fatal("burner did not start")
	}
	hogJob := job.New(2, "h", "hog", 4, 10, 10, 5)
	freshJob := job.New(3, "f", "fresh", 4, 10, 10, 6)
	q.Push(hogJob)
	q.Push(freshJob)
	d.Schedule(10, m, q)
	if q.Head().ID != 3 {
		t.Fatalf("head = job %d, want fresh job 3 ahead of hog job 2", q.Head().ID)
	}
}

func TestPolicyNamesAndKinds(t *testing.T) {
	if NewPBS().Name() != "PBS" || NewPBS().Backfill() != Conservative {
		t.Fatal("PBS config wrong")
	}
	if NewLSF().Name() != "LSF" || NewLSF().Backfill() != EASY {
		t.Fatal("LSF config wrong")
	}
	if NewDPCS(DefaultDPCSGate()).Name() != "DPCS" || NewDPCS(DefaultDPCSGate()).Backfill() != EASY {
		t.Fatal("DPCS config wrong")
	}
	if NoBackfill.String() != "fcfs" || EASY.String() != "easy" || Conservative.String() != "conservative" {
		t.Fatal("kind strings wrong")
	}
}

func ids(js []*job.Job) []int {
	out := make([]int, len(js))
	for i, j := range js {
		out[i] = j.ID
	}
	return out
}

func TestDispatcherPolicyAccessor(t *testing.T) {
	d := NewDispatcher(NewLSF())
	if d.Policy().Name() != "LSF" {
		t.Fatalf("policy = %s", d.Policy().Name())
	}
}

func TestPlanningDurationFloor(t *testing.T) {
	j := job.New(1, "u", "g", 1, 0, 0, 0)
	if got := planningDuration(j); got != 1 {
		t.Fatalf("zero-estimate planning duration = %d, want 1", got)
	}
	j.Estimate = 500
	if got := planningDuration(j); got != 500 {
		t.Fatalf("planning duration = %d", got)
	}
}

func TestFairShareChargesCorrectOnFinish(t *testing.T) {
	// OnStart charges cpus*estimate; OnFinish corrects to cpus*runtime.
	pol := NewLSF().(*fairSharePolicy)
	j := job.New(1, "u", "gX", 10, 100, 1000, 0)
	j.Start = 0
	pol.OnStart(0, j)
	if got := pol.tree.GroupUsage(0, "gX"); got != 10*1000 {
		t.Fatalf("usage after start = %v, want 10000", got)
	}
	j.Finish = 100
	pol.OnFinish(100, j)
	// Correction: +10*(100-1000) = -9000; remaining ~1000 decayed over
	// 100s (negligible at the default one-week half-life).
	got := pol.tree.GroupUsage(100, "gX")
	if got < 990 || got > 1000 {
		t.Fatalf("usage after finish = %v, want ~1000", got)
	}
}

func TestMaintenanceOutranksEverything(t *testing.T) {
	pol := NewLSF()
	maint := job.New(1, "_maint", "_maint", 10, 100, 100, 0)
	maint.Class = job.Maintenance
	pol.Prioritize(0, maint)
	normal := job.New(2, "u", "g", 1, 100, 100, 0)
	pol.Prioritize(0, normal)
	if maint.Priority <= normal.Priority {
		t.Fatalf("maintenance priority %v not above %v", maint.Priority, normal.Priority)
	}
}

func TestDPCSNonWrappingWindow(t *testing.T) {
	// A window that does not wrap midnight: [08:00, 17:00).
	g := DPCSGate{BigCPUs: 1, NightStart: 8 * 3600, NightEnd: 17 * 3600}
	if !g.allowedAt(9 * 3600) {
		t.Fatal("09:00 should be allowed")
	}
	if g.allowedAt(18 * 3600) {
		t.Fatal("18:00 should be blocked")
	}
	if got := g.nextAllowed(5 * 3600); got != 8*3600 {
		t.Fatalf("nextAllowed(05:00) = %d, want 08:00", got)
	}
	if got := g.nextAllowed(20 * 3600); got != 86400+8*3600 {
		t.Fatalf("nextAllowed(20:00) = %d, want next day 08:00", got)
	}
}

func TestEarliestAllowedFitGateInteraction(t *testing.T) {
	// A gated job whose capacity-fit lands at noon must be pushed into the
	// night window and re-fitted there.
	d := NewDispatcher(NewDPCS(DPCSGate{BigCPUs: 4, NightStart: 18 * 3600, NightEnd: 6 * 3600}))
	m := mkMachine(10)
	blocker := job.New(1, "u", "g", 8, 12*3600, 12*3600, 0)
	m.Start(0, blocker) // frees at noon
	q := NewQueue()
	gated := job.New(2, "u", "g", 8, 100, 100, 0)
	q.Push(gated)
	res := d.Schedule(0, m, q)
	if len(res.Started) != 0 {
		t.Fatal("gated job started")
	}
	if res.HeadReservation != 18*3600 {
		t.Fatalf("reservation = %d, want 18:00 (fit at noon pushed to night)", res.HeadReservation)
	}
}

func TestMultifactorPriorities(t *testing.T) {
	pol := NewMultifactor()
	if pol.Name() != "Multifactor" || pol.Backfill() != EASY {
		t.Fatal("multifactor config wrong")
	}
	now := sim.Time(10 * 3600)
	old := job.New(1, "u", "g", 4, 100, 100, 0) // waited 10h
	fresh := job.New(2, "u", "g", 4, 100, 100, now)
	pol.Prioritize(now, old)
	pol.Prioritize(now, fresh)
	if old.Priority <= fresh.Priority {
		t.Fatalf("age factor missing: old %v vs fresh %v", old.Priority, fresh.Priority)
	}
	big := job.New(3, "u", "g", 2048, 100, 100, now)
	pol.Prioritize(now, big)
	if big.Priority <= fresh.Priority {
		t.Fatalf("size factor missing: big %v vs small %v", big.Priority, fresh.Priority)
	}
	maint := job.New(4, "_m", "_m", 4, 100, 100, now)
	maint.Class = job.Maintenance
	pol.Prioritize(now, maint)
	if maint.Priority <= big.Priority {
		t.Fatal("maintenance must outrank everything")
	}
}

func TestMultifactorFairShareFactor(t *testing.T) {
	pol := NewMultifactor()
	hogJob := job.New(1, "hog", "g", 64, 100000, 100000, 0)
	hogJob.Start = 0
	pol.OnStart(0, hogJob)
	a := job.New(2, "hog", "g", 4, 100, 100, 0)
	b := job.New(3, "fresh", "g2", 4, 100, 100, 0)
	pol.Prioritize(0, a)
	pol.Prioritize(0, b)
	if a.Priority >= b.Priority {
		t.Fatalf("fair-share factor missing: hog %v vs fresh %v", a.Priority, b.Priority)
	}
}

func TestMultifactorSimulatesCleanly(t *testing.T) {
	// End-to-end smoke: all jobs finish under the multifactor policy.
	d := NewDispatcher(NewMultifactor())
	m := mkMachine(32)
	q := NewQueue()
	for i := 1; i <= 10; i++ {
		q.Push(job.New(i, "u", "g", 8, 100, 200, 0))
	}
	started := 0
	for pass := 0; pass < 100 && started < 10; pass++ {
		res := d.Schedule(sim.Time(pass*100), m, q)
		for _, j := range res.Started {
			started++
			m.Finish(j.Start+j.Runtime, j)
		}
	}
	if started != 10 {
		t.Fatalf("started %d/10 under multifactor", started)
	}
}

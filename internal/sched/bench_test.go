package sched

import (
	"math/rand"
	"testing"

	"interstitial/internal/job"
	"interstitial/internal/machine"
	"interstitial/internal/sim"
)

// TestMergeUnorderedMatchesSort differential-tests the incremental
// binary-insert merge against a full sort on random priority/submit/ID
// mixes, including duplicate priorities and submit times.
func TestMergeUnorderedMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 200; round++ {
		inc := NewQueue()
		full := NewQueue()
		id := 1
		push := func(n int) {
			for k := 0; k < n; k++ {
				prio := float64(rng.Intn(4)) // few distinct values: exercise tie-breaks
				submit := sim.Time(rng.Intn(5))
				a := job.New(id, "u", "g", 1, 10, 10, submit)
				a.Priority = prio
				b := job.New(id, "u", "g", 1, 10, 10, submit)
				b.Priority = prio
				inc.Push(a)
				full.Push(b)
				id++
			}
		}
		// Interleave arrival batches with ordering steps and removals.
		for batch := 0; batch < 5; batch++ {
			push(rng.Intn(8))
			inc.MergeUnordered()
			full.Sort()
			if inc.Len() > 0 && rng.Intn(2) == 0 {
				i := rng.Intn(inc.Len())
				inc.Remove(i)
				full.Remove(i)
			}
		}
		inc.MergeUnordered()
		full.Sort()
		if inc.Len() != full.Len() {
			t.Fatalf("round %d: len %d != %d", round, inc.Len(), full.Len())
		}
		for i := 0; i < inc.Len(); i++ {
			if inc.At(i).ID != full.At(i).ID {
				t.Fatalf("round %d pos %d: merge %d != sort %d", round, i, inc.At(i).ID, full.At(i).ID)
			}
		}
	}
}

// TestRemoveClearsVacatedSlot checks Remove nils the tail slot so the
// queue's backing array does not pin dispatched jobs.
func TestRemoveClearsVacatedSlot(t *testing.T) {
	q := NewQueue()
	for id := 1; id <= 4; id++ {
		q.Push(job.New(id, "u", "g", 1, 10, 10, 0))
	}
	q.Sort()
	q.Remove(1)
	if got := q.jobs[:4][3]; got != nil {
		t.Fatalf("vacated slot still holds job %d", got.ID)
	}
	want := []int{1, 3, 4}
	for i, id := range want {
		if q.At(i).ID != id {
			t.Fatalf("order[%d] = %d, want %d", i, q.At(i).ID, id)
		}
	}
}

// forceDynamic downgrades any policy to OrderingDynamic, recovering the
// historical reprioritize-everything-every-pass behavior for differential
// testing.
type forceDynamic struct{ Policy }

func (forceDynamic) Ordering() Ordering { return OrderingDynamic }

// TestIncrementalOrderingMatchesDynamic drives two dispatchers — one using
// the policy's declared ordering (static for PBS, epoch for LSF/DPCS), one
// forced to re-sort every pass — through an identical randomized stream of
// submissions, passes, and finishes, and requires identical dispatch
// decisions and queue orders throughout.
func TestIncrementalOrderingMatchesDynamic(t *testing.T) {
	mk := []struct {
		name string
		pol  func() Policy
	}{
		{"PBS", NewPBS},
		{"LSF", NewLSF},
		{"DPCS", func() Policy { return NewDPCS(DPCSGate{}) }},
	}
	for _, tc := range mk {
		t.Run(tc.name, func(t *testing.T) {
			fast := NewDispatcher(tc.pol())
			slow := NewDispatcher(forceDynamic{tc.pol()})
			fm, sm := mkMachine(64), mkMachine(64)
			fq, sq := NewQueue(), NewQueue()
			rng := rand.New(rand.NewSource(9))
			users := []string{"alice", "bob", "carol"}
			groups := []string{"phys", "chem"}
			id := 1
			now := sim.Time(0)
			// finishDue retires every running job whose runtime has elapsed,
			// in deterministic (end, ID) order — the engine invariant that
			// running jobs never overstay start+runtime, which FromRunning's
			// timeline construction relies on.
			finishDue := func(d *Dispatcher, m *machine.Machine, now sim.Time) {
				for {
					var pick *job.Job
					for _, j := range m.RunningBorrow() {
						if j.Start+j.Runtime > now {
							continue
						}
						if pick == nil || j.Start+j.Runtime < pick.Start+pick.Runtime ||
							(j.Start+j.Runtime == pick.Start+pick.Runtime && j.ID < pick.ID) {
							pick = j
						}
					}
					if pick == nil {
						return
					}
					m.Finish(now, pick)
					d.Policy().OnFinish(now, pick)
				}
			}
			for step := 0; step < 300; step++ {
				now += sim.Time(rng.Intn(600))
				finishDue(fast, fm, now)
				finishDue(slow, sm, now)
				for k := 0; k < rng.Intn(4); k++ {
					u, g := users[rng.Intn(len(users))], groups[rng.Intn(len(groups))]
					cpus := rng.Intn(48) + 1
					rt := sim.Time(rng.Intn(3000) + 1)
					est := rt * sim.Time(rng.Intn(6)+1)
					fq.Push(job.New(id, u, g, cpus, rt, est, now))
					sq.Push(job.New(id, u, g, cpus, rt, est, now))
					id++
				}
				fres := fast.Schedule(now, fm, fq)
				sres := slow.Schedule(now, sm, sq)
				if len(fres.Started) != len(sres.Started) {
					t.Fatalf("step %d: started %d vs %d", step, len(fres.Started), len(sres.Started))
				}
				for i := range fres.Started {
					if fres.Started[i].ID != sres.Started[i].ID {
						t.Fatalf("step %d: start[%d] %d vs %d", step, i, fres.Started[i].ID, sres.Started[i].ID)
					}
				}
				if fres.HeadReservation != sres.HeadReservation {
					t.Fatalf("step %d: head reservation %d vs %d", step, fres.HeadReservation, sres.HeadReservation)
				}
				if fq.Len() != sq.Len() {
					t.Fatalf("step %d: queue len %d vs %d", step, fq.Len(), sq.Len())
				}
				for i := 0; i < fq.Len(); i++ {
					if fq.At(i).ID != sq.At(i).ID {
						t.Fatalf("step %d: queue[%d] %d vs %d", step, i, fq.At(i).ID, sq.At(i).ID)
					}
				}
			}
		})
	}
}

// benchQueue fills m to capacity with running jobs and queues depth
// waiting jobs too wide to start, so every Schedule pass in the benchmark
// loop does full planning work but leaves all state unchanged.
func benchQueue(m *machine.Machine, depth int) *Queue {
	rng := rand.New(rand.NewSource(1))
	cpus := m.Config().CPUs
	id := 1
	for cpus > 0 {
		w := rng.Intn(64) + 1
		if w > cpus {
			w = cpus
		}
		rt := sim.Time(rng.Intn(40000) + 1000)
		m.Start(0, job.New(id, "u", "g", w, rt, rt*2, 0))
		cpus -= w
		id++
	}
	q := NewQueue()
	users := []string{"alice", "bob", "carol", "dave"}
	groups := []string{"phys", "chem", "bio"}
	for k := 0; k < depth; k++ {
		rt := sim.Time(rng.Intn(40000) + 1)
		q.Push(job.New(id, users[rng.Intn(len(users))], groups[rng.Intn(len(groups))],
			rng.Intn(256)+1, rt, rt*sim.Time(rng.Intn(6)+1), sim.Time(rng.Intn(10000))))
		id++
	}
	return q
}

// BenchmarkSchedulePass measures one steady-state scheduling pass at
// paper-scale queue depth on a full Blue Mountain-sized machine: profile
// rebuild, queue ordering, and the backfill walk, with no dispatches (the
// machine stays full, so each iteration sees identical state). EASY is the
// LSF/DPCS flavor; Conservative reserves every queued job and is the
// dispatcher's worst case.
func BenchmarkSchedulePass(b *testing.B) {
	bench := func(b *testing.B, pol Policy) {
		m := mkMachineN("bench", 4662)
		q := benchQueue(m, 1024)
		d := NewDispatcher(pol)
		d.Schedule(0, m, q) // warm up: initial sort + arena growth
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d.Schedule(0, m, q)
		}
	}
	b.Run("easy", func(b *testing.B) { bench(b, NewLSF()) })
	b.Run("conservative", func(b *testing.B) { bench(b, NewPBS()) })
}

func mkMachineN(name string, cpus int) *machine.Machine {
	return machine.New(machine.Config{Name: name, CPUs: cpus, ClockGHz: 1})
}

// Package sched implements the queueing systems of the three ASCI
// machines: a generic backfill dispatcher parameterized by a Policy that
// supplies priorities (fair share), start-time gates (time-of-day rules),
// and the backfill flavor.
//
//   - PBS on Ross: equal shares, conservative (restrictive) backfill.
//   - LSF on Blue Mountain: hierarchical group fair share, EASY backfill.
//   - DPCS on Blue Pacific: user+group fair share, EASY backfill, and
//     time-of-day constraints on large/long jobs.
package sched

import (
	"interstitial/internal/fairshare"
	"interstitial/internal/job"
	"interstitial/internal/sim"
)

// BackfillKind selects the dispatcher's backfill strategy.
type BackfillKind uint8

const (
	// NoBackfill is strict priority-order FCFS: the queue blocks on the
	// first job that does not fit.
	NoBackfill BackfillKind = iota
	// EASY holds a reservation for the head job only; anything that does
	// not delay the head may jump ahead.
	EASY
	// Conservative holds reservations for every queued job; a job may
	// jump ahead only if it delays nobody.
	Conservative
)

// String names the backfill kind.
func (k BackfillKind) String() string {
	switch k {
	case NoBackfill:
		return "fcfs"
	case EASY:
		return "easy"
	case Conservative:
		return "conservative"
	}
	return "backfill?"
}

// Ordering declares how a policy's priorities move over time, which is
// what decides how much queue-ordering work a scheduling pass can skip.
type Ordering uint8

const (
	// OrderingDynamic priorities depend on the current time (e.g. queue
	// age): every pass must re-prioritize and re-sort the whole queue.
	// It is the zero value, so it is the safe default for any policy that
	// does not declare otherwise.
	OrderingDynamic Ordering = iota
	// OrderingEpoch priorities are time-invariant between epochs declared
	// by OrderEpoch: while the epoch holds, only new arrivals need
	// prioritizing, merged into the standing order.
	OrderingEpoch
	// OrderingStatic priorities never change after assignment: new
	// arrivals are prioritized once and merged; the queue is never
	// re-sorted.
	OrderingStatic
)

// String names the ordering class.
func (o Ordering) String() string {
	switch o {
	case OrderingDynamic:
		return "dynamic"
	case OrderingEpoch:
		return "epoch"
	case OrderingStatic:
		return "static"
	}
	return "ordering?"
}

// Policy captures everything machine-specific about a queueing system.
type Policy interface {
	// Name identifies the policy in reports ("PBS", "LSF", "DPCS").
	Name() string
	// Backfill reports the backfill flavor.
	Backfill() BackfillKind
	// Ordering declares how this policy's priorities move over time; the
	// dispatcher uses it to elide per-pass reprioritization and sorting.
	// A policy claiming anything stronger than OrderingDynamic promises
	// that Prioritize(now, j) is independent of now (except inside an
	// epoch change for OrderingEpoch).
	Ordering() Ordering
	// OrderEpoch reports the current priority epoch for OrderingEpoch
	// policies: as long as the value holds, no queued job's priority has
	// changed. Other orderings may return anything.
	OrderEpoch() uint64
	// Prioritize assigns j.Priority at time now. Called at least once for
	// every queued job before it is ordered; dynamic policies see it again
	// on every scheduling pass.
	Prioritize(now sim.Time, j *job.Job)
	// EarliestAllowed reports the earliest instant >= at when policy
	// rules (e.g. time-of-day windows) permit j to start. Policies
	// without gates return at unchanged.
	EarliestAllowed(at sim.Time, j *job.Job) sim.Time
	// OnStart and OnFinish let the policy account usage.
	OnStart(now sim.Time, j *job.Job)
	OnFinish(now sim.Time, j *job.Job)
}

// PolicyState is a serializable snapshot of a policy's mutable state.
// Every built-in policy's only mutable state is its fair-share tree;
// policies with more state would extend this struct.
type PolicyState struct {
	FairShare *fairshare.State `json:"fairShare,omitempty"`
}

// Stateful is implemented by policies whose accounting can be
// checkpointed and restored. All built-in policies implement it (via
// the shared fair-share core); the engine's checkpoint path requires
// it.
type Stateful interface {
	PolicyState() PolicyState
	SetPolicyState(PolicyState)
}

// fairSharePolicy is the common core of the three machine policies.
type fairSharePolicy struct {
	name     string
	backfill BackfillKind
	tree     *fairshare.Tree
}

func (p *fairSharePolicy) Name() string           { return p.name }
func (p *fairSharePolicy) Backfill() BackfillKind { return p.backfill }

// Ordering: flat trees always score 0 (priority is pure submit order, so
// ordering is static); sharing trees move priorities only when a Charge
// lands, which the tree's epoch tracks. The decay factor cancels in
// Priority's usage ratios, so `now` never enters the score.
func (p *fairSharePolicy) Ordering() Ordering {
	if p.tree.Level() == fairshare.Flat {
		return OrderingStatic
	}
	return OrderingEpoch
}

func (p *fairSharePolicy) OrderEpoch() uint64 { return p.tree.Epoch() }

func (p *fairSharePolicy) Prioritize(now sim.Time, j *job.Job) {
	if j.Class == job.Maintenance {
		// Scheduled outages outrank everything: the machine must drain.
		j.Priority = 1e18
		return
	}
	j.Priority = p.tree.Priority(now, j)
}

func (p *fairSharePolicy) EarliestAllowed(at sim.Time, j *job.Job) sim.Time { return at }

// OnStart charges the job's estimated area up front, which is when real
// fair-share systems begin counting a dispatch against the account.
func (p *fairSharePolicy) OnStart(now sim.Time, j *job.Job) {
	p.tree.Charge(now, j, float64(j.CPUs)*float64(j.Estimate))
}

// OnFinish corrects the start-time charge to the job's true area.
func (p *fairSharePolicy) OnFinish(now sim.Time, j *job.Job) {
	p.tree.Charge(now, j, float64(j.CPUs)*(float64(j.Runtime)-float64(j.Estimate)))
}

// PolicyState snapshots the fair-share accounting. Embedding promotes
// these onto the DPCS and multifactor policies, whose extra fields
// (gates, weights) are construction-time constants.
func (p *fairSharePolicy) PolicyState() PolicyState {
	st := p.tree.State()
	return PolicyState{FairShare: &st}
}

// SetPolicyState restores the fair-share accounting.
func (p *fairSharePolicy) SetPolicyState(st PolicyState) {
	if st.FairShare != nil {
		p.tree.SetState(*st.FairShare)
	}
}

// NewFCFS returns a plain first-come-first-served policy with no backfill;
// used as the simplest baseline and in tests.
func NewFCFS() Policy {
	return &fairSharePolicy{name: "FCFS", backfill: NoBackfill, tree: fairshare.New(fairshare.Flat, 0)}
}

// NewPBS returns the Ross policy: equal user shares (priority is pure
// submit order) with restrictive, reservation-for-everyone backfill.
func NewPBS() Policy {
	return &fairSharePolicy{name: "PBS", backfill: Conservative, tree: fairshare.New(fairshare.Flat, 0)}
}

// NewLSF returns the Blue Mountain policy: hierarchical group-level fair
// share with EASY backfill.
func NewLSF() Policy {
	return &fairSharePolicy{name: "LSF", backfill: EASY, tree: fairshare.New(fairshare.GroupLevel, 0)}
}

// multifactorPolicy is a SLURM-style multifactor priority: a weighted sum
// of queue age, fair-share standing, and job size, with EASY backfill. It
// is not one of the paper's three machines but the dominant open-source
// successor of their queueing systems, useful as a modern baseline.
type multifactorPolicy struct {
	fairSharePolicy
	ageWeight  float64 // priority per hour waited
	sizeWeight float64 // priority per 1024 CPUs (big jobs first, SLURM-style)
	fsWeight   float64 // scales the fair-share term
}

// NewMultifactor returns a SLURM-like policy with typical weights: age
// dominates slowly, fair share separates heavy users, and large jobs get
// a modest boost so they are not starved by backfillable small jobs.
func NewMultifactor() Policy {
	return &multifactorPolicy{
		fairSharePolicy: fairSharePolicy{name: "Multifactor", backfill: EASY, tree: fairshare.New(fairshare.UserAndGroup, 0)},
		ageWeight:       0.01,
		sizeWeight:      0.05,
		fsWeight:        1.0,
	}
}

// Ordering: the age term makes priorities a function of the current time,
// so every pass must re-prioritize.
func (p *multifactorPolicy) Ordering() Ordering { return OrderingDynamic }

// Prioritize combines the factors. Maintenance drains still outrank all.
func (p *multifactorPolicy) Prioritize(now sim.Time, j *job.Job) {
	if j.Class == job.Maintenance {
		j.Priority = 1e18
		return
	}
	ageH := float64(now-j.Submit) / 3600
	if ageH < 0 {
		ageH = 0
	}
	j.Priority = p.ageWeight*ageH +
		p.sizeWeight*float64(j.CPUs)/1024 +
		p.fsWeight*p.tree.Priority(now, j)
}

// DPCSGate holds the Blue Pacific time-of-day constraints: jobs at least
// as big as BigCPUs, or with estimates at least LongEstimate, may start
// only in the night window [NightStart, NightEnd) (wrapping midnight).
type DPCSGate struct {
	BigCPUs      int
	LongEstimate sim.Time
	NightStart   sim.Time // seconds into the day, e.g. 18*3600
	NightEnd     sim.Time // seconds into the day, e.g. 6*3600
}

// DefaultDPCSGate reflects a production-style configuration that still
// lets the machine reach its Table 1 utilization: very large (256+ CPU) or
// day-long (24h+ estimate) jobs start between 18:00 and 06:00. Because
// user estimates grossly overestimate runtimes, tighter gates would drag
// far more of the workload into the night window than the real machine
// tolerated.
func DefaultDPCSGate() DPCSGate {
	return DPCSGate{BigCPUs: 256, LongEstimate: 24 * 3600, NightStart: 18 * 3600, NightEnd: 6 * 3600}
}

type dpcsPolicy struct {
	fairSharePolicy
	gate DPCSGate
}

// NewDPCS returns the Blue Pacific policy: user+group fair share, EASY
// backfill, plus the time-of-day gate.
func NewDPCS(gate DPCSGate) Policy {
	return &dpcsPolicy{
		fairSharePolicy: fairSharePolicy{name: "DPCS", backfill: EASY, tree: fairshare.New(fairshare.UserAndGroup, 0)},
		gate:            gate,
	}
}

const day = sim.Time(24 * 3600)

// gated reports whether j falls under the time-of-day restriction.
func (g DPCSGate) gated(j *job.Job) bool {
	if j.Class != job.Native {
		// Interstitial jobs are small and short by construction;
		// maintenance drains run whenever scheduled.
		return false
	}
	return (g.BigCPUs > 0 && j.CPUs >= g.BigCPUs) || (g.LongEstimate > 0 && j.Estimate >= g.LongEstimate)
}

// allowedAt reports whether the clock time t falls in the night window.
func (g DPCSGate) allowedAt(t sim.Time) bool {
	tod := t % day
	if g.NightStart <= g.NightEnd {
		return tod >= g.NightStart && tod < g.NightEnd
	}
	// Window wraps midnight.
	return tod >= g.NightStart || tod < g.NightEnd
}

// nextAllowed reports the earliest instant >= t inside the window.
func (g DPCSGate) nextAllowed(t sim.Time) sim.Time {
	if g.allowedAt(t) {
		return t
	}
	tod := t % day
	dayStart := t - tod
	if g.NightStart <= g.NightEnd {
		if tod < g.NightStart {
			return dayStart + g.NightStart
		}
		return dayStart + day + g.NightStart
	}
	// Wrapping window: the only disallowed region is [NightEnd, NightStart).
	return dayStart + g.NightStart
}

func (p *dpcsPolicy) EarliestAllowed(at sim.Time, j *job.Job) sim.Time {
	if !p.gate.gated(j) {
		return at
	}
	return p.gate.nextAllowed(at)
}

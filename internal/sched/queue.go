package sched

import (
	"slices"
	"sort"

	"interstitial/internal/job"
)

// Queue holds waiting jobs in dispatch order. Order is (priority
// descending, submit time ascending, ID ascending) — a total order, since
// IDs are unique — so any ordering step that respects the key triple
// produces the same sequence.
//
// The queue tracks an ordered prefix: jobs[:ordered] are in dispatch
// order, jobs[ordered:] are arrivals appended since. The dispatcher either
// merges the arrivals into the prefix (MergeUnordered — priorities already
// assigned, the incremental path) or re-sorts everything (Sort — after a
// reprioritization).
type Queue struct {
	jobs    []*job.Job
	ordered int
}

// NewQueue returns an empty queue.
func NewQueue() *Queue { return &Queue{} }

// Len reports the number of queued jobs.
func (q *Queue) Len() int { return len(q.jobs) }

// Push appends j to the queue and marks it Queued. The job joins the
// unordered tail; an ordering step places it before the next dispatch.
func (q *Queue) Push(j *job.Job) {
	j.State = job.Queued
	q.jobs = append(q.jobs, j)
}

// Head returns the highest-priority job, or nil when empty.
func (q *Queue) Head() *job.Job {
	if len(q.jobs) == 0 {
		return nil
	}
	return q.jobs[0]
}

// At returns the i-th job in dispatch order.
func (q *Queue) At(i int) *job.Job { return q.jobs[i] }

// Remove deletes the job at index i, preserving order. The vacated tail
// slot is cleared so a dispatched job is not kept reachable from the
// queue's backing array for the rest of the run.
func (q *Queue) Remove(i int) *job.Job {
	j := q.jobs[i]
	last := len(q.jobs) - 1
	copy(q.jobs[i:], q.jobs[i+1:])
	q.jobs[last] = nil
	q.jobs = q.jobs[:last]
	if i < q.ordered {
		q.ordered--
	}
	return j
}

// Jobs exposes the backing slice in dispatch order; callers must not
// mutate it.
func (q *Queue) Jobs() []*job.Job { return q.jobs }

// Ordered reports the length of the ordered prefix (see the type
// comment); checkpointing captures it so a restore can adopt the queue
// without forcing a premature re-sort.
func (q *Queue) Ordered() int { return q.ordered }

// Restore replaces the queue's contents: jobs are adopted in the given
// order, of which the first ordered are already in dispatch order. Each
// job is marked Queued. Checkpoint restore uses it.
func (q *Queue) Restore(jobs []*job.Job, ordered int) {
	if ordered < 0 {
		ordered = 0
	}
	if ordered > len(jobs) {
		ordered = len(jobs)
	}
	q.jobs = jobs
	q.ordered = ordered
	for _, j := range jobs {
		j.State = job.Queued
	}
}

// Unordered exposes the arrivals appended since the last ordering step;
// callers assign their priorities before MergeUnordered.
func (q *Queue) Unordered() []*job.Job { return q.jobs[q.ordered:] }

// dispatchBefore reports whether a precedes b in dispatch order:
// (priority desc, submit asc, ID asc).
func dispatchBefore(a, b *job.Job) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	if a.Submit != b.Submit {
		return a.Submit < b.Submit
	}
	return a.ID < b.ID
}

// Sort orders the whole queue by the dispatch key. The key triple is a
// total order (IDs are unique), so the result is deterministic without
// needing a stable sort.
func (q *Queue) Sort() {
	slices.SortFunc(q.jobs, func(a, b *job.Job) int {
		if dispatchBefore(a, b) {
			return -1
		}
		if dispatchBefore(b, a) {
			return 1
		}
		return 0
	})
	q.ordered = len(q.jobs)
}

// MergeUnordered inserts each unordered arrival into its dispatch-order
// position within the ordered prefix (binary search + shift). With k
// arrivals against an n-job queue this costs O(k·(log n + n)) moves
// instead of the O(n log n) compare-and-swap of a full re-sort, and
// because the key triple is total it lands the exact sequence Sort would.
// Arrivals must have their priorities assigned already.
func (q *Queue) MergeUnordered() {
	for q.ordered < len(q.jobs) {
		j := q.jobs[q.ordered]
		i := sort.Search(q.ordered, func(k int) bool { return dispatchBefore(j, q.jobs[k]) })
		copy(q.jobs[i+1:q.ordered+1], q.jobs[i:q.ordered])
		q.jobs[i] = j
		q.ordered++
	}
}

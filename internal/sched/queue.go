package sched

import (
	"sort"

	"interstitial/internal/job"
)

// Queue holds waiting jobs in dispatch order. Order is (priority
// descending, submit time ascending, ID ascending); Sort must be called
// after priorities change.
type Queue struct {
	jobs []*job.Job
}

// NewQueue returns an empty queue.
func NewQueue() *Queue { return &Queue{} }

// Len reports the number of queued jobs.
func (q *Queue) Len() int { return len(q.jobs) }

// Push appends j to the queue and marks it Queued.
func (q *Queue) Push(j *job.Job) {
	j.State = job.Queued
	q.jobs = append(q.jobs, j)
}

// Head returns the highest-priority job, or nil when empty.
func (q *Queue) Head() *job.Job {
	if len(q.jobs) == 0 {
		return nil
	}
	return q.jobs[0]
}

// At returns the i-th job in dispatch order.
func (q *Queue) At(i int) *job.Job { return q.jobs[i] }

// Remove deletes the job at index i, preserving order.
func (q *Queue) Remove(i int) *job.Job {
	j := q.jobs[i]
	q.jobs = append(q.jobs[:i], q.jobs[i+1:]...)
	return j
}

// Jobs exposes the backing slice in dispatch order; callers must not
// mutate it.
func (q *Queue) Jobs() []*job.Job { return q.jobs }

// Sort orders the queue by (priority desc, submit asc, ID asc). The sort
// is stable on the explicit key triple, so results are deterministic.
func (q *Queue) Sort() {
	sort.SliceStable(q.jobs, func(a, b int) bool {
		ja, jb := q.jobs[a], q.jobs[b]
		if ja.Priority != jb.Priority {
			return ja.Priority > jb.Priority
		}
		if ja.Submit != jb.Submit {
			return ja.Submit < jb.Submit
		}
		return ja.ID < jb.ID
	})
}
